"""Tests for scaling, encoding, imputation, dedup and splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    drop_duplicates,
    impute_missing,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z, 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    def test_transform_uses_training_stats(self, rng):
        X_train = rng.normal(0, 1, size=(100, 2))
        X_test = rng.normal(10, 1, size=(10, 2))
        scaler = StandardScaler().fit(X_train)
        Z = scaler.transform(X_test)
        assert Z.mean() > 5.0  # far from 0 in training units


class TestLabelEncoder:
    def test_roundtrip_strings(self):
        y = np.array(["web", "video", "web", "interactive"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert np.array_equal(enc.inverse_transform(codes), y)

    def test_codes_contiguous(self):
        enc = LabelEncoder().fit(np.array([5, 9, 5, 7]))
        codes = enc.transform(np.array([5, 7, 9]))
        assert codes.tolist() == [0, 1, 2]

    def test_unknown_label_raises(self):
        enc = LabelEncoder().fit(np.array([1, 2]))
        with pytest.raises(ValueError, match="unknown"):
            enc.transform(np.array([3]))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(np.array([1]))

    def test_inverse_out_of_range_raises(self):
        enc = LabelEncoder().fit(np.array([1, 2]))
        with pytest.raises(ValueError):
            enc.inverse_transform(np.array([5]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_roundtrip_property(self, values):
        y = np.array(values)
        enc = LabelEncoder().fit(y)
        assert np.array_equal(enc.inverse_transform(enc.transform(y)), y)


class TestImputeMissing:
    def test_mean_fill(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = impute_missing(X, "mean")
        assert out[0, 1] == 4.0
        assert not np.isnan(out).any()

    def test_median_fill(self):
        X = np.array([[1.0], [np.nan], [3.0], [100.0]])
        out = impute_missing(X, "median")
        assert out[1, 0] == 3.0

    def test_zero_fill(self):
        X = np.array([[np.nan, 2.0]])
        assert impute_missing(X, "zero")[0, 0] == 0.0

    def test_all_nan_column_gets_zero(self):
        X = np.array([[np.nan], [np.nan]])
        assert np.allclose(impute_missing(X, "mean"), 0.0)

    def test_original_not_mutated(self):
        X = np.array([[np.nan, 1.0]])
        impute_missing(X)
        assert np.isnan(X[0, 0])

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            impute_missing(np.ones((2, 2)), "mode")

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=10),
            elements=st.one_of(st.floats(-100, 100), st.just(np.nan)),
        )
    )
    def test_no_nans_after_impute_property(self, X):
        assert not np.isnan(impute_missing(X)).any()


class TestDropDuplicates:
    def test_removes_exact_duplicates(self):
        X = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        out, __ = drop_duplicates(X)
        assert out.shape == (2, 2)

    def test_keeps_first_occurrence_order(self):
        X = np.array([[3.0], [1.0], [3.0], [2.0]])
        out, __ = drop_duplicates(X)
        assert out.ravel().tolist() == [3.0, 1.0, 2.0]

    def test_same_row_different_label_kept(self):
        X = np.array([[1.0], [1.0]])
        y = np.array([0, 1])
        out_X, out_y = drop_duplicates(X, y)
        assert out_X.shape[0] == 2
        assert out_y.tolist() == [0, 1]

    def test_same_row_same_label_dropped(self):
        X = np.array([[1.0], [1.0]])
        y = np.array([0, 0])
        out_X, out_y = drop_duplicates(X, y)
        assert out_X.shape[0] == 1

    def test_no_duplicates_noop(self, rng):
        X = rng.normal(size=(20, 3))
        out, __ = drop_duplicates(X)
        assert np.array_equal(out, X)


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, seed=0)
        assert len(y_tr) + len(y_te) == len(y)
        assert abs(len(y_te) - 0.25 * len(y)) <= 2

    def test_stratified_keeps_all_classes(self):
        y = np.array([0] * 50 + [1] * 4 + [2] * 6)
        X = np.arange(60, dtype=float).reshape(-1, 1)
        __, __, y_tr, y_te = train_test_split(X, y, test_size=0.2, seed=1)
        assert set(y_tr) == {0, 1, 2}
        assert set(y_te) == {0, 1, 2}

    def test_disjoint_and_complete(self, blobs):
        X, y = blobs
        X_tr, X_te, __, __ = train_test_split(X, y, seed=3)
        combined = np.vstack([X_tr, X_te])
        assert combined.shape == X.shape
        # every original row appears exactly once
        orig = {row.tobytes() for row in X}
        got = [row.tobytes() for row in combined]
        assert set(got) == orig and len(got) == len(orig)

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=9)
        b = train_test_split(X, y, seed=9)
        assert np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=1)
        b = train_test_split(X, y, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_invalid_test_size_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((3, 1)), np.ones(4))
