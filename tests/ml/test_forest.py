"""Tests for the random forest, including its poisoning resilience."""

import numpy as np
import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.ml import DecisionTreeClassifier, RandomForestClassifier


class TestRandomForest:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        m = RandomForestClassifier(n_estimators=10, max_depth=5, seed=0).fit(X, y)
        assert m.score(X, y) > 0.97

    def test_solves_xor(self, xor_data):
        X, y = xor_data
        m = RandomForestClassifier(n_estimators=20, max_depth=8, seed=0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_n_estimators_respected(self, blobs):
        X, y = blobs
        m = RandomForestClassifier(n_estimators=7, max_depth=2).fit(X, y)
        assert len(m.trees_) == 7

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.ones((1, 2)))

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, max_depth=3, seed=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, max_depth=3, seed=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_bootstrap_trees_differ(self, blobs):
        X, y = blobs
        m = RandomForestClassifier(n_estimators=5, max_depth=4, seed=0).fit(X, y)
        preds = [t.predict(X[:50]) for t in m.trees_]
        assert any(
            not np.array_equal(preds[0], p) for p in preds[1:]
        ), "bootstrapping should diversify trees"

    def test_no_bootstrap_option(self, blobs):
        X, y = blobs
        m = RandomForestClassifier(
            n_estimators=3, max_depth=3, bootstrap=False, seed=0
        ).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_rare_class_missing_from_bootstrap_ok(self):
        """Votes stay aligned even when a bootstrap misses a rare class."""
        gen = np.random.default_rng(0)
        X = gen.normal(size=(60, 2))
        y = np.array([0] * 57 + [1, 2, 2])
        X[57:] += 10.0
        m = RandomForestClassifier(n_estimators=10, max_depth=3, seed=0).fit(X, y)
        proba = m.predict_proba(X)
        assert proba.shape == (60, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_sum_to_one(self, blobs):
        X, y = blobs
        m = RandomForestClassifier(n_estimators=5, max_depth=4, seed=0).fit(X, y)
        importances = m.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_feature_importances_find_signal(self):
        gen = np.random.default_rng(1)
        X = gen.normal(size=(300, 5))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        m = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(X, y)
        assert int(np.argmax(m.feature_importances())) == 2


class TestForestPoisoningResilience:
    """The Fig. 6 headline: RF out-resists a single tree under label noise."""

    def test_forest_beats_single_tree_under_flipping(self, fall_task_split):
        X_train, X_test, y_train, y_test = fall_task_split
        attack = RandomLabelFlippingAttack(rate=0.3, seed=0)
        poisoned = attack.apply(X_train, y_train)
        forest = RandomForestClassifier(n_estimators=20, max_depth=10, seed=0).fit(
            poisoned.X, poisoned.y
        )
        tree = DecisionTreeClassifier(max_depth=10, seed=0).fit(
            poisoned.X, poisoned.y
        )
        assert forest.score(X_test, y_test) > tree.score(X_test, y_test)

    def test_forest_degrades_gracefully(self, fall_task_split):
        X_train, X_test, y_train, y_test = fall_task_split
        clean = RandomForestClassifier(n_estimators=15, max_depth=8, seed=0).fit(
            X_train, y_train
        )
        poisoned_data = RandomLabelFlippingAttack(rate=0.2, seed=0).apply(
            X_train, y_train
        )
        poisoned = RandomForestClassifier(n_estimators=15, max_depth=8, seed=0).fit(
            poisoned_data.X, poisoned_data.y
        )
        drop = clean.score(X_test, y_test) - poisoned.score(X_test, y_test)
        assert drop < 0.15, "RF should lose little accuracy at 20% poison"
