"""Tests for MLP parameter access and incremental training (federated API)."""

import numpy as np
import pytest

from repro.ml.neural import MLPClassifier


class TestInitialize:
    def test_topology(self):
        model = MLPClassifier(hidden_layers=(8, 4), seed=0)
        model.initialize(6, np.array([0, 1, 2]))
        shapes = [w.shape for w in model.weights_]
        assert shapes == [(6, 8), (8, 4), (4, 3)]
        assert model.is_fitted

    def test_predict_works_untrained(self):
        model = MLPClassifier(hidden_layers=(4,), seed=0)
        model.initialize(3, np.array(["a", "b"]))
        proba = model.predict_proba(np.zeros((2, 3)))
        assert proba.shape == (2, 2)

    def test_too_few_classes_raises(self):
        model = MLPClassifier()
        with pytest.raises(ValueError):
            model.initialize(3, np.array([1]))


class TestParameterAccess:
    def test_roundtrip(self):
        model = MLPClassifier(hidden_layers=(5,), seed=0)
        model.initialize(4, np.array([0, 1]))
        params = model.get_parameters()
        assert len(params) == 4  # W0, b0, W1, b1
        other = MLPClassifier(hidden_layers=(5,), seed=99)
        other.initialize(4, np.array([0, 1]))
        other.set_parameters(params)
        X = np.random.default_rng(0).normal(size=(6, 4))
        assert np.allclose(model.predict_proba(X), other.predict_proba(X))

    def test_parameters_are_copies(self):
        model = MLPClassifier(hidden_layers=(3,), seed=0)
        model.initialize(2, np.array([0, 1]))
        params = model.get_parameters()
        params[0][:] = 999.0
        assert not np.allclose(model.weights_[0], 999.0)

    def test_shape_mismatch_raises(self):
        model = MLPClassifier(hidden_layers=(3,), seed=0)
        model.initialize(2, np.array([0, 1]))
        bad = model.get_parameters()
        bad[0] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.set_parameters(bad)

    def test_wrong_count_raises(self):
        model = MLPClassifier(hidden_layers=(3,), seed=0)
        model.initialize(2, np.array([0, 1]))
        with pytest.raises(ValueError):
            model.set_parameters(model.get_parameters()[:-1])

    def test_access_before_init_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().get_parameters()


class TestPartialFit:
    def test_reduces_loss(self, blobs):
        X, y = blobs
        model = MLPClassifier(hidden_layers=(8,), seed=0)
        model.initialize(X.shape[1], np.unique(y))
        before = model.score(X, y)
        model.partial_fit(X, y, n_epochs=10)
        after = model.score(X, y)
        assert after > before

    def test_does_not_reinitialise(self, blobs):
        X, y = blobs
        model = MLPClassifier(hidden_layers=(8,), seed=0)
        model.initialize(X.shape[1], np.unique(y))
        model.partial_fit(X, y, n_epochs=3)
        checkpoint = model.get_parameters()
        model.partial_fit(X[:10], y[:10], n_epochs=0)  # clamps to 1 epoch
        # weights moved from the checkpoint — continued, not reset
        assert any(
            not np.allclose(a, b)
            for a, b in zip(model.get_parameters(), checkpoint)
        )

    def test_unknown_class_raises(self, blobs):
        X, y = blobs
        model = MLPClassifier(hidden_layers=(8,), seed=0)
        model.initialize(X.shape[1], np.unique(y))
        with pytest.raises(ValueError, match="unknown class"):
            model.partial_fit(X[:5], np.full(5, 77))

    def test_before_init_raises(self, blobs):
        X, y = blobs
        with pytest.raises(RuntimeError):
            MLPClassifier().partial_fit(X, y)

    def test_after_regular_fit(self, blobs):
        X, y = blobs
        model = MLPClassifier(hidden_layers=(8,), n_epochs=10, seed=0).fit(X, y)
        model.partial_fit(X, y, n_epochs=2)
        assert model.score(X, y) > 0.9
