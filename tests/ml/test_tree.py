"""Tests for the CART classifier and the boosting regressor."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestDecisionTreeClassifier:
    def test_fits_blobs_perfectly_unbounded(self, blobs):
        X, y = blobs
        m = DecisionTreeClassifier().fit(X, y)
        assert m.score(X, y) == 1.0

    def test_solves_xor(self, xor_data):
        X, y = xor_data
        m = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        m = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert m.depth <= 2

    def test_depth_zero_tree_is_single_leaf_prior(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 1])
        m = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert m.n_leaves == 1
        proba = m.predict_proba(np.array([[5.0]]))
        assert proba[0].tolist() == pytest.approx([2 / 3, 1 / 3])

    def test_min_samples_leaf(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(40, 2))
        y = (X[:, 0] > 0).astype(int)
        m = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        for node in m.nodes_:
            if node.is_leaf:
                assert node.n_samples >= 10

    def test_entropy_criterion_works(self, blobs):
        X, y = blobs
        m = DecisionTreeClassifier(criterion="entropy", max_depth=4).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_invalid_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1, 1])
        m = DecisionTreeClassifier().fit(X, y)
        assert m.n_leaves == 1

    def test_feature_count_validation_on_predict(self, blobs):
        X, y = blobs
        m = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError, match="expected"):
            m.predict(np.ones((2, X.shape[1] + 1)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.ones((1, 2)))

    def test_max_features_subsampling_changes_tree(self, blobs):
        X, y = blobs
        full = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        sub = DecisionTreeClassifier(max_depth=3, max_features=1, seed=1).fit(X, y)
        full_feats = {n.feature for n in full.nodes_ if not n.is_leaf}
        sub_feats = {n.feature for n in sub.nodes_ if not n.is_leaf}
        assert sub.score(X, y) > 0.5
        assert full_feats or sub_feats  # both grew something

    def test_deterministic_splits(self, blobs):
        X, y = blobs
        m1 = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        m2 = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        assert np.array_equal(m1.predict(X), m2.predict(X))

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0, 0, 0, 1])
        m = DecisionTreeClassifier().fit(X, y)
        assert m.score(X, y) == 1.0


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        target = (X[:, 0] > 0.5).astype(float)
        reg = DecisionTreeRegressor(max_depth=2, min_samples_leaf=2)
        reg.fit(X, target)
        pred = reg.predict(X)
        assert np.abs(pred - target).mean() < 0.05

    def test_l2_regularisation_shrinks_leaves(self):
        X = np.array([[0.0], [1.0]])
        g = np.array([1.0, 1.0])
        plain = DecisionTreeRegressor(max_depth=0, l2=0.0)
        plain.fit(X, g)
        reg = DecisionTreeRegressor(max_depth=0, l2=2.0)
        reg.fit(X, g)
        assert abs(reg.predict(X)[0]) < abs(plain.predict(X)[0])

    def test_leafwise_growth_respects_max_leaves(self):
        gen = np.random.default_rng(2)
        X = gen.normal(size=(200, 3))
        g = np.sin(X[:, 0] * 3) + X[:, 1]
        reg = DecisionTreeRegressor(
            max_depth=10, max_leaves=5, growth="leaf", min_samples_leaf=2
        )
        reg.fit(X, g)
        n_leaves = sum(1 for n in reg.nodes_ if n.is_leaf)
        assert n_leaves <= 5

    def test_leafwise_beats_stump_on_depth2_signal(self):
        gen = np.random.default_rng(3)
        X = gen.normal(size=(300, 2))
        g = np.where((X[:, 0] > 0) & (X[:, 1] > 0), 1.0, -1.0)
        leaf = DecisionTreeRegressor(max_depth=6, max_leaves=8, growth="leaf")
        leaf.fit(X, g)
        stump = DecisionTreeRegressor(max_depth=1)
        stump.fit(X, g)
        err_leaf = np.abs(leaf.predict(X) - g).mean()
        err_stump = np.abs(stump.predict(X) - g).mean()
        assert err_leaf < err_stump

    def test_invalid_growth_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(growth="wide")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_hessian_weighting(self):
        # with huge hessian the Newton leaf value shrinks toward zero
        X = np.array([[0.0], [1.0]])
        g = np.array([2.0, 2.0])
        h_small = np.array([1.0, 1.0])
        h_large = np.array([100.0, 100.0])
        small = DecisionTreeRegressor(max_depth=0)
        small.fit(X, g, h_small)
        large = DecisionTreeRegressor(max_depth=0)
        large.fit(X, g, h_large)
        assert abs(large.predict(X)[0]) < abs(small.predict(X)[0])
